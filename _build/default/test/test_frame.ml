(* Codec tests: addresses, checksums, Ethernet/IPv4/UDP/TCP round trips
   and malformed-input rejection. *)

open Cio_frame

let ip_a = Helpers.ip_a
let ip_b = Helpers.ip_b

let test_mac_octets () =
  let m = Addr.mac_of_octets 0xDE 0xAD 0xBE 0xEF 0x00 0x01 in
  Alcotest.(check int) "octet 0" 0xDE (Addr.mac_octet m 0);
  Alcotest.(check int) "octet 5" 0x01 (Addr.mac_octet m 5);
  Alcotest.(check string) "pretty" "de:ad:be:ef:00:01" (Addr.mac_to_string m)

let test_ipv4_string_roundtrip () =
  Alcotest.(check string) "pretty" "10.0.0.1" (Addr.ipv4_to_string ip_a);
  (match Addr.ipv4_of_string "192.168.1.254" with
  | Some ip -> Alcotest.(check string) "parse" "192.168.1.254" (Addr.ipv4_to_string ip)
  | None -> Alcotest.fail "parse failed");
  Alcotest.(check bool) "reject 256" true (Addr.ipv4_of_string "256.0.0.1" = None);
  Alcotest.(check bool) "reject short" true (Addr.ipv4_of_string "10.0.0" = None);
  Alcotest.(check bool) "reject junk" true (Addr.ipv4_of_string "a.b.c.d" = None)

let test_checksum_rfc1071_example () =
  (* Classic example: checksum over 0001 f203 f4f5 f6f7 = 0x220d. *)
  let b = Helpers.hex "0001f203f4f5f6f7" in
  Alcotest.(check int) "rfc1071" 0x220D (Checksum.compute b ~pos:0 ~len:8)

let test_checksum_verify () =
  let b = Helpers.hex "0001f203f4f5f6f7" in
  let csum = Checksum.compute b ~pos:0 ~len:8 in
  let with_csum = Bytes.cat b (Bytes.create 2) in
  Bytes.set_uint16_be with_csum 8 csum;
  Alcotest.(check bool) "verifies" true (Checksum.verify with_csum ~pos:0 ~len:10)

let test_checksum_odd_length () =
  let b = Bytes.of_string "abc" in
  (* Must not raise, and must be stable. *)
  Alcotest.(check int) "stable" (Checksum.compute b ~pos:0 ~len:3) (Checksum.compute b ~pos:0 ~len:3)

let eth_frame payload =
  { Ethernet.dst = Helpers.mac_b; src = Helpers.mac_a; ethertype = Ethernet.Ipv4; payload }

let test_ethernet_roundtrip () =
  let frame = eth_frame (Bytes.make 100 'p') in
  match Ethernet.parse (Ethernet.build frame) with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
      Alcotest.(check int) "dst" frame.Ethernet.dst parsed.Ethernet.dst;
      Alcotest.(check int) "src" frame.Ethernet.src parsed.Ethernet.src;
      Helpers.check_bytes "payload" frame.Ethernet.payload parsed.Ethernet.payload

let test_ethernet_pads_short_payload () =
  let built = Ethernet.build (eth_frame (Bytes.of_string "tiny")) in
  Alcotest.(check int) "minimum frame size" (Ethernet.header_len + Ethernet.min_payload)
    (Bytes.length built)

let test_ethernet_truncated_rejected () =
  match Ethernet.parse (Bytes.make 10 'x') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short frame must be rejected"

let test_ethernet_unknown_ethertype () =
  let b = Ethernet.build { (eth_frame Bytes.empty) with Ethernet.ethertype = Ethernet.Unknown 0x1234 } in
  match Ethernet.parse b with
  | Ok { Ethernet.ethertype = Ethernet.Unknown 0x1234; _ } -> ()
  | _ -> Alcotest.fail "unknown ethertype must survive roundtrip"

let ip_packet payload =
  { Ipv4.src = ip_a; dst = ip_b; protocol = Ipv4.Udp; ttl = 64; payload }

let test_ipv4_roundtrip () =
  match Ipv4.parse (Ipv4.build (ip_packet (Bytes.make 64 'd'))) with
  | Error e -> Alcotest.fail e
  | Ok p ->
      Alcotest.(check int32) "src" ip_a p.Ipv4.src;
      Alcotest.(check int32) "dst" ip_b p.Ipv4.dst;
      Alcotest.(check int) "ttl" 64 p.Ipv4.ttl;
      Alcotest.(check int) "payload" 64 (Bytes.length p.Ipv4.payload)

let test_ipv4_header_checksum_enforced () =
  let b = Ipv4.build (ip_packet (Bytes.of_string "x")) in
  Bytes.set b 8 '\x01' (* mangle TTL without fixing checksum *);
  match Ipv4.parse b with
  | Error "ipv4: header checksum mismatch" -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ e)
  | Ok _ -> Alcotest.fail "corrupted header must be rejected"

let test_ipv4_rejects_fragments () =
  let b = Ipv4.build (ip_packet (Bytes.of_string "x")) in
  (* Set MF bit and fix up the checksum. *)
  Bytes.set_uint16_be b 6 0x2000;
  Bytes.set_uint16_be b 10 0;
  let csum = Checksum.compute b ~pos:0 ~len:20 in
  Bytes.set_uint16_be b 10 csum;
  match Ipv4.parse b with
  | Error "ipv4: fragmentation unsupported" -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ e)
  | Ok _ -> Alcotest.fail "fragment must be rejected"

let test_ipv4_tolerates_link_padding () =
  (* Ethernet pads short packets; the IP total-length field governs. *)
  let b = Ipv4.build (ip_packet (Bytes.of_string "small")) in
  let padded = Bytes.cat b (Bytes.make 20 '\000') in
  match Ipv4.parse padded with
  | Ok p -> Alcotest.(check int) "payload trimmed" 5 (Bytes.length p.Ipv4.payload)
  | Error e -> Alcotest.fail e

let test_ipv4_rejects_bad_version () =
  let b = Ipv4.build (ip_packet Bytes.empty) in
  Bytes.set b 0 '\x65' (* version 6 *);
  match Ipv4.parse b with
  | Error "ipv4: not version 4" -> ()
  | _ -> Alcotest.fail "bad version must be rejected"

let test_udp_roundtrip () =
  let dgram = { Udp.src_port = 5353; dst_port = 53; payload = Bytes.of_string "query" } in
  match Udp.parse ~src_ip:ip_a ~dst_ip:ip_b (Udp.build ~src_ip:ip_a ~dst_ip:ip_b dgram) with
  | Error e -> Alcotest.fail e
  | Ok p ->
      Alcotest.(check int) "sport" 5353 p.Udp.src_port;
      Alcotest.(check int) "dport" 53 p.Udp.dst_port;
      Helpers.check_bytes "payload" dgram.Udp.payload p.Udp.payload

let test_udp_checksum_includes_pseudo_header () =
  let b = Udp.build ~src_ip:ip_a ~dst_ip:ip_b { Udp.src_port = 1; dst_port = 2; payload = Bytes.of_string "x" } in
  (* The same datagram verified against a different address must fail:
     the pseudo-header binds it to its endpoints. (Swapping src and dst
     would NOT fail — the one's-complement sum is order-independent —
     which is itself worth pinning down.) *)
  let other = Cio_frame.Addr.ipv4_of_octets 10 0 0 3 in
  (match Udp.parse ~src_ip:other ~dst_ip:ip_b b with
  | Error "udp: checksum mismatch" -> ()
  | _ -> Alcotest.fail "pseudo-header must be bound");
  match Udp.parse ~src_ip:ip_b ~dst_ip:ip_a b with
  | Ok _ -> ()  (* order-independence of the internet checksum *)
  | Error e -> Alcotest.fail ("swap unexpectedly failed: " ^ e)

let test_udp_corrupted_rejected () =
  let b = Udp.build ~src_ip:ip_a ~dst_ip:ip_b { Udp.src_port = 1; dst_port = 2; payload = Bytes.of_string "data" } in
  Bytes.set b (Bytes.length b - 1) '\xFF';
  match Udp.parse ~src_ip:ip_a ~dst_ip:ip_b b with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corruption must be detected"

let tcp_seg ?(payload = Bytes.empty) ?(mss = None) ?(flags = Tcp_wire.flags_none) () =
  { Tcp_wire.src_port = 1000; dst_port = 2000; seq = 42l; ack = 7l; flags; window = 512; mss; payload }

let test_tcp_roundtrip () =
  let seg = tcp_seg ~payload:(Bytes.of_string "segment data") ~flags:{ Tcp_wire.flags_none with Tcp_wire.ack = true; psh = true } () in
  match Tcp_wire.parse ~src_ip:ip_a ~dst_ip:ip_b (Tcp_wire.build ~src_ip:ip_a ~dst_ip:ip_b seg) with
  | Error e -> Alcotest.fail e
  | Ok p ->
      Alcotest.(check int32) "seq" 42l p.Tcp_wire.seq;
      Alcotest.(check int32) "ack" 7l p.Tcp_wire.ack;
      Alcotest.(check bool) "ack flag" true p.Tcp_wire.flags.Tcp_wire.ack;
      Alcotest.(check bool) "psh flag" true p.Tcp_wire.flags.Tcp_wire.psh;
      Alcotest.(check int) "window" 512 p.Tcp_wire.window;
      Helpers.check_bytes "payload" seg.Tcp_wire.payload p.Tcp_wire.payload

let test_tcp_mss_option () =
  let seg = tcp_seg ~mss:(Some 1460) ~flags:{ Tcp_wire.flags_none with Tcp_wire.syn = true } () in
  match Tcp_wire.parse ~src_ip:ip_a ~dst_ip:ip_b (Tcp_wire.build ~src_ip:ip_a ~dst_ip:ip_b seg) with
  | Ok p -> Alcotest.(check (option int)) "mss" (Some 1460) p.Tcp_wire.mss
  | Error e -> Alcotest.fail e

let test_tcp_checksum_enforced () =
  let b = Tcp_wire.build ~src_ip:ip_a ~dst_ip:ip_b (tcp_seg ~payload:(Bytes.of_string "x") ()) in
  Bytes.set b (Bytes.length b - 1) 'y';
  match Tcp_wire.parse ~src_ip:ip_a ~dst_ip:ip_b b with
  | Error "tcp: checksum mismatch" -> ()
  | _ -> Alcotest.fail "corruption must be rejected"

let test_tcp_seq_arithmetic_wraps () =
  Alcotest.(check bool) "wrap lt" true (Tcp_wire.seq_lt 0xFFFFFFF0l 5l);
  Alcotest.(check bool) "not lt" false (Tcp_wire.seq_lt 5l 0xFFFFFFF0l);
  Alcotest.(check int32) "add wraps" 4l (Tcp_wire.seq_add 0xFFFFFFFFl 5);
  Alcotest.(check int) "diff across wrap" 21 (Tcp_wire.seq_diff 5l 0xFFFFFFF0l)

let test_tcp_bad_data_offset_rejected () =
  let b = Tcp_wire.build ~src_ip:ip_a ~dst_ip:ip_b (tcp_seg ()) in
  Bytes.set b 12 '\x30' (* data offset 12 bytes < 20 *);
  match Tcp_wire.parse ~src_ip:ip_a ~dst_ip:ip_b b with
  | Error "tcp: bad data offset" -> ()
  | _ -> Alcotest.fail "bad offset must be rejected"

let payload_arb =
  QCheck.make
    ~print:(fun b -> Cio_util.Hex.of_bytes b)
    QCheck.Gen.(map Bytes.of_string (string_size (int_range 0 1400)))

let prop_eth_roundtrip =
  QCheck.Test.make ~name:"ethernet parse . build = id (payload)" ~count:200 payload_arb (fun p ->
      match Ethernet.parse (Ethernet.build (eth_frame p)) with
      | Ok parsed ->
          (* Short payloads come back zero-padded; compare the prefix. *)
          Bytes.length parsed.Ethernet.payload >= Bytes.length p
          && Bytes.equal (Bytes.sub parsed.Ethernet.payload 0 (Bytes.length p)) p
      | Error _ -> false)

let prop_ipv4_roundtrip =
  QCheck.Test.make ~name:"ipv4 parse . build = id" ~count:200 payload_arb (fun p ->
      match Ipv4.parse (Ipv4.build (ip_packet p)) with
      | Ok parsed -> Bytes.equal parsed.Ipv4.payload p
      | Error _ -> false)

let prop_udp_roundtrip =
  QCheck.Test.make ~name:"udp parse . build = id" ~count:200 payload_arb (fun p ->
      match Udp.parse ~src_ip:ip_a ~dst_ip:ip_b
              (Udp.build ~src_ip:ip_a ~dst_ip:ip_b { Udp.src_port = 9; dst_port = 10; payload = p })
      with
      | Ok parsed -> Bytes.equal parsed.Udp.payload p
      | Error _ -> false)

let prop_tcp_roundtrip =
  QCheck.Test.make ~name:"tcp parse . build = id" ~count:200 payload_arb (fun p ->
      match Tcp_wire.parse ~src_ip:ip_a ~dst_ip:ip_b
              (Tcp_wire.build ~src_ip:ip_a ~dst_ip:ip_b (tcp_seg ~payload:p ()))
      with
      | Ok parsed -> Bytes.equal parsed.Tcp_wire.payload p
      | Error _ -> false)

let prop_ipv4_bitflip_rejected_or_equal =
  QCheck.Test.make ~name:"ipv4 header bit flips never parse to wrong metadata" ~count:300
    QCheck.(pair payload_arb (int_bound 159))
    (fun (p, bit) ->
      let b = Ipv4.build (ip_packet p) in
      let byte = bit / 8 in
      Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl (bit mod 8))));
      match Ipv4.parse b with
      | Error _ -> true
      | Ok parsed ->
          (* A flip that still parses can only be one the checksum does
             not cover inconsistently (i.e. it flipped and the checksum
             field compensates); metadata must then be self-consistent. *)
          Bytes.length parsed.Ipv4.payload <= Bytes.length p)

let test_pretty_tcp () =
  let seg =
    Tcp_wire.build ~src_ip:ip_a ~dst_ip:ip_b
      (tcp_seg ~payload:(Bytes.of_string "xy")
         ~flags:{ Tcp_wire.flags_none with Tcp_wire.syn = true }
         ())
  in
  let ip = Ipv4.build { Ipv4.src = ip_a; dst = ip_b; protocol = Ipv4.Tcp; ttl = 64; payload = seg } in
  let frame = Ethernet.build (eth_frame ip) in
  let s = Pretty.frame_summary frame in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("summary mentions " ^ needle) true
        (let n = String.length s and c = String.length needle in
         let rec go i = i + c <= n && (String.equal (String.sub s i c) needle || go (i + 1)) in
         go 0))
    [ "10.0.0.1:1000"; "10.0.0.2:2000"; "S"; "len=2" ]

let test_pretty_degrades () =
  Alcotest.(check bool) "opaque bytes summarised" true
    (String.length (Pretty.frame_summary (Bytes.make 5 '\xAB')) > 0);
  Alcotest.(check bool) "garbage ip summarised" true
    (String.length (Pretty.ip_summary (Bytes.make 40 '\xCD')) > 0)

let suite =
  [
    Alcotest.test_case "addr: mac octets" `Quick test_mac_octets;
    Alcotest.test_case "addr: ipv4 strings" `Quick test_ipv4_string_roundtrip;
    Alcotest.test_case "checksum: rfc1071 example" `Quick test_checksum_rfc1071_example;
    Alcotest.test_case "checksum: verify" `Quick test_checksum_verify;
    Alcotest.test_case "checksum: odd length" `Quick test_checksum_odd_length;
    Alcotest.test_case "ethernet: roundtrip" `Quick test_ethernet_roundtrip;
    Alcotest.test_case "ethernet: minimum padding" `Quick test_ethernet_pads_short_payload;
    Alcotest.test_case "ethernet: truncated rejected" `Quick test_ethernet_truncated_rejected;
    Alcotest.test_case "ethernet: unknown ethertype" `Quick test_ethernet_unknown_ethertype;
    Alcotest.test_case "ipv4: roundtrip" `Quick test_ipv4_roundtrip;
    Alcotest.test_case "ipv4: checksum enforced" `Quick test_ipv4_header_checksum_enforced;
    Alcotest.test_case "ipv4: fragments rejected" `Quick test_ipv4_rejects_fragments;
    Alcotest.test_case "ipv4: link padding tolerated" `Quick test_ipv4_tolerates_link_padding;
    Alcotest.test_case "ipv4: version checked" `Quick test_ipv4_rejects_bad_version;
    Alcotest.test_case "udp: roundtrip" `Quick test_udp_roundtrip;
    Alcotest.test_case "udp: pseudo-header bound" `Quick test_udp_checksum_includes_pseudo_header;
    Alcotest.test_case "udp: corruption rejected" `Quick test_udp_corrupted_rejected;
    Alcotest.test_case "tcp: roundtrip" `Quick test_tcp_roundtrip;
    Alcotest.test_case "tcp: mss option" `Quick test_tcp_mss_option;
    Alcotest.test_case "tcp: checksum enforced" `Quick test_tcp_checksum_enforced;
    Alcotest.test_case "tcp: sequence arithmetic wraps" `Quick test_tcp_seq_arithmetic_wraps;
    Alcotest.test_case "tcp: bad data offset" `Quick test_tcp_bad_data_offset_rejected;
    Alcotest.test_case "pretty: tcp one-liner" `Quick test_pretty_tcp;
    Alcotest.test_case "pretty: degrades gracefully" `Quick test_pretty_degrades;
    Helpers.qtest prop_eth_roundtrip;
    Helpers.qtest prop_ipv4_roundtrip;
    Helpers.qtest prop_udp_roundtrip;
    Helpers.qtest prop_tcp_roundtrip;
    Helpers.qtest prop_ipv4_bitflip_rejected_or_equal;
  ]
