test/test_switch.ml: Addr Alcotest Array Bytes Channel Cio_cionet Cio_core Cio_frame Cio_netsim Cio_tcpip Cio_tls Cio_util Dual Engine Helpers List Peer Printf Rng Switch
