test/test_observe_tcb.ml: Alcotest Cio_observe Cio_tcb Int64 List Observe Printf Tcb
