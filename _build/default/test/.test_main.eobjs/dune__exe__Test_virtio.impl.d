test/test_virtio.ml: Alcotest Bytes Cio_mem Cio_virtio Device Driver_hardened Driver_unhardened Helpers List Printf Region String Transport Vring
