test/test_extensions.ml: Alcotest Buffer Bytes Cio_cionet Cio_experiments Cio_mem Cio_tcb Cio_tcpip Cio_util Config Cost Driver Format Helpers Host_model List Multiqueue Printf Queue Rng String
