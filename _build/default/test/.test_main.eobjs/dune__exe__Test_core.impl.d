test/test_core.ml: Alcotest Bytes Channel Cio_cionet Cio_core Cio_netsim Cio_observe Cio_tcb Cio_tcpip Cio_tls Cio_util Configurations Cost Dual Engine Helpers Link List Option Peer Printf Rng Tunnel
