test/test_cionet.ml: Alcotest Bitops Bytes Cio_cionet Cio_mem Cio_util Config Cost Driver Helpers Host_model List Printf QCheck Region Ring String
