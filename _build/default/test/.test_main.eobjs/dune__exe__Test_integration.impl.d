test/test_integration.ml: Adversary Alcotest Buffer Bytes Channel Cio_cionet Cio_core Cio_netsim Cio_tls Cio_util Dual Engine Helpers Link List Option Peer Printf Queue Rng String
