test/test_util.ml: Alcotest Array Bitops Bytes Cio_util Cost Crc32 Gen Helpers Hex List QCheck Rng Stats
