test/test_netsim.ml: Adversary Alcotest Bytes Char Cio_netsim Cio_util Engine Helpers Link List
