test/test_compartment.ml: Alcotest Bytes Cio_compartment Cio_util Compartment Cost Helpers QCheck
