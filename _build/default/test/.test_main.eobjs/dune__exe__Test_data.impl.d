test/test_data.ml: Alcotest Cio_data Cve_net Hardening List
