test/test_mem.ml: Alcotest Bytes Cio_mem Cio_util Cost Helpers List Option Pool QCheck Region
