test/test_storage.ml: Alcotest Blockdev Bytes Char Cio_storage Dual_store File Gen Helpers List Printf QCheck String
