test/test_dda.ml: Alcotest Bytes Char Cio_crypto Cio_dda Cio_util Cost Dda Helpers Ide Rng Spdm
