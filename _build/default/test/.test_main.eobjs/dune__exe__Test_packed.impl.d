test/test_packed.ml: Alcotest Bytes Cio_mem Cio_virtio Helpers List Packed Printf String
