test/test_tls.ml: Alcotest Bytes Char Cio_tls Cio_util Gen Helpers List Printf QCheck Session Wire
