test/test_crypto.ml: Aead Alcotest Bytes Chacha20 Char Cio_crypto Cio_util Ct Helpers Hex Hkdf Hmac List Poly1305 QCheck Sha256 String
