test/test_frame.ml: Addr Alcotest Bytes Char Checksum Cio_frame Cio_util Ethernet Helpers Ipv4 List Pretty QCheck String Tcp_wire Udp
