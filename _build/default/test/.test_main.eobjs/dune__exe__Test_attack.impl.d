test/test_attack.ml: Alcotest Attack Bytes Cio_attack Fmt List Printf String
