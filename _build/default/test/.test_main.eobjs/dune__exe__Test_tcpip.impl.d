test/test_tcpip.ml: Alcotest Buffer Bytes Char Cio_frame Cio_tcpip Cio_util Gen Helpers List Netif Option Printf QCheck Stack Tcp
