test/test_shapes.ml: Alcotest Bitops Bytes Cio_cionet Cio_compartment Cio_data Cio_mem Cio_util Cio_virtio Compartment Cost Cve_net Hardening List Printf
