test/helpers.ml: Addr Alcotest Buffer Bytes Cio_frame Cio_tcpip Cio_tls Cio_util Int64 List Option QCheck_alcotest
