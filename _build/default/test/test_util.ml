(* Unit + property tests for cio_util. *)

open Cio_util

let test_rng_determinism () =
  let a = Rng.create 123L and b = Rng.create 123L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 1L in
  let child = Rng.split a in
  Alcotest.(check bool) "split differs from parent"
    (Rng.next_int64 child <> Rng.next_int64 a)
    true

let test_rng_int_bounds () =
  let r = Rng.create 9L in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in [0,17)" (v >= 0 && v < 17) true
  done

let test_rng_int_rejects_nonpositive () =
  let r = Rng.create 1L in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int r 0))

let test_rng_range () =
  let r = Rng.create 5L in
  for _ = 1 to 200 do
    let v = Rng.range r ~lo:5 ~hi:8 in
    Alcotest.(check bool) "in [5,8]" (v >= 5 && v <= 8) true
  done

let test_rng_float_unit_interval () =
  let r = Rng.create 2L in
  for _ = 1 to 1000 do
    let v = Rng.float r in
    Alcotest.(check bool) "in [0,1)" (v >= 0.0 && v < 1.0) true
  done

let test_rng_bytes_length () =
  let r = Rng.create 3L in
  Alcotest.(check int) "length" 37 (Bytes.length (Rng.bytes r 37))

let test_rng_shuffle_permutation () =
  let r = Rng.create 4L in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 (fun i -> i)) sorted

let test_bitops_power_of_two () =
  List.iter
    (fun (n, expect) -> Alcotest.(check bool) (string_of_int n) expect (Bitops.is_power_of_two n))
    [ (1, true); (2, true); (3, false); (64, true); (0, false); (-4, false); (4096, true) ]

let test_bitops_next_power_of_two () =
  List.iter
    (fun (n, expect) -> Alcotest.(check int) (string_of_int n) expect (Bitops.next_power_of_two n))
    [ (0, 1); (1, 1); (2, 2); (3, 4); (1000, 1024); (1024, 1024) ]

let test_bitops_mask () =
  Alcotest.(check int) "mask 64" 63 (Bitops.mask_of_size 64);
  Alcotest.check_raises "mask 63 rejected"
    (Invalid_argument "Bitops.mask_of_size: size must be a power of two") (fun () ->
      ignore (Bitops.mask_of_size 63))

let test_bitops_align () =
  Alcotest.(check int) "up" 4096 (Bitops.align_up 1 ~align:4096);
  Alcotest.(check int) "up exact" 4096 (Bitops.align_up 4096 ~align:4096);
  Alcotest.(check int) "down" 0 (Bitops.align_down 4095 ~align:4096);
  Alcotest.(check bool) "aligned" true (Bitops.is_aligned 8192 ~align:4096);
  Alcotest.(check bool) "unaligned" false (Bitops.is_aligned 8193 ~align:4096)

let test_bitops_log2 () =
  Alcotest.(check int) "log2 1" 0 (Bitops.log2 1);
  Alcotest.(check int) "log2 4096" 12 (Bitops.log2 4096)

let test_bitops_popcount () =
  Alcotest.(check int) "popcount 0" 0 (Bitops.popcount 0);
  Alcotest.(check int) "popcount 0xFF" 8 (Bitops.popcount 0xFF);
  Alcotest.(check int) "popcount 0x101" 2 (Bitops.popcount 0x101)

let test_stats_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p50" 3.0 (Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Stats.percentile xs 100.0);
  Alcotest.(check (float 1e-9)) "p25 interpolates" 2.0 (Stats.percentile xs 25.0)

let test_stats_summary () =
  let s = Stats.summarize [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  Alcotest.(check int) "count" 8 s.Stats.count;
  Alcotest.(check (float 1e-9)) "mean" 5.0 s.Stats.mean;
  Alcotest.(check (float 0.2)) "stddev" 2.138 s.Stats.stddev;
  Alcotest.(check (float 1e-9)) "min" 2.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 9.0 s.Stats.max

let test_stats_online_matches_batch () =
  let xs = Array.init 500 (fun i -> float_of_int ((i * 37 mod 101) - 50)) in
  let o = Stats.online () in
  Array.iter (Stats.add o) xs;
  Alcotest.(check int) "count" 500 (Stats.online_count o);
  Alcotest.(check (float 1e-6)) "mean" (Stats.mean xs) (Stats.online_mean o);
  Alcotest.(check (float 1e-6)) "stddev" (Stats.stddev xs) (Stats.online_stddev o)

let test_crc32_vectors () =
  (* Canonical check value for "123456789". *)
  Alcotest.(check int32) "check" 0xCBF43926l (Crc32.digest_string "123456789");
  Alcotest.(check int32) "empty" 0l (Crc32.digest_string "")

let test_crc32_incremental () =
  let whole = Crc32.digest_string "hello world" in
  let part = Crc32.update 0l (Bytes.of_string "hello world") ~pos:0 ~len:5 in
  let part = Crc32.update part (Bytes.of_string "hello world") ~pos:5 ~len:6 in
  Alcotest.(check int32) "incremental equals one-shot" whole part

let test_hex_roundtrip () =
  Alcotest.(check string) "roundtrip" "deadbeef" (Hex.of_bytes (Hex.to_bytes "deadbeef"));
  Alcotest.(check string) "whitespace tolerated" "0102"
    (Hex.of_bytes (Hex.to_bytes "01 02"))

let test_hex_invalid () =
  Alcotest.check_raises "odd" (Invalid_argument "Hex.to_bytes: odd length") (fun () ->
      ignore (Hex.to_bytes "abc"));
  Alcotest.check_raises "bad digit" (Invalid_argument "Hex.to_bytes: invalid hex digit") (fun () ->
      ignore (Hex.to_bytes "zz"))

let test_cost_meter_accumulates () =
  let m = Cost.meter () in
  Cost.charge m Cost.Copy 100;
  Cost.charge m Cost.Copy 50;
  Cost.charge m Cost.Gate 10;
  Alcotest.(check int) "copy cycles" 150 (Cost.cycles_of m Cost.Copy);
  Alcotest.(check int) "copy count" 2 (Cost.count_of m Cost.Copy);
  Alcotest.(check int) "total" 160 (Cost.total m)

let test_cost_snapshot_diff () =
  let m = Cost.meter () in
  Cost.charge m Cost.Ring 10;
  let before = Cost.snapshot m in
  Cost.charge m Cost.Ring 25;
  let d = Cost.diff ~before ~after:(Cost.snapshot m) in
  Alcotest.(check int) "diff" 25 (Cost.cycles_of d Cost.Ring)

let test_cost_reset () =
  let m = Cost.meter () in
  Cost.charge m Cost.Crypto 99;
  Cost.reset m;
  Alcotest.(check int) "zeroed" 0 (Cost.total m)

let test_cost_copy_formula () =
  let m = Cost.default in
  Alcotest.(check bool) "copy grows with size"
    (Cost.copy_cost m 4096 > Cost.copy_cost m 64)
    true;
  Alcotest.(check int) "copy base" m.Cost.copy_base (Cost.copy_cost m 0)

let prop_mask_confines =
  QCheck.Test.make ~name:"mask confines any int to [0,size)" ~count:500
    QCheck.(pair small_nat (int_bound 20))
    (fun (v, bits) ->
      let size = 1 lsl bits in
      let masked = v land Bitops.mask_of_size size in
      masked >= 0 && masked < size)

let prop_align_up_idempotent =
  QCheck.Test.make ~name:"align_up is idempotent" ~count:500
    QCheck.(pair small_nat (int_range 0 12))
    (fun (n, bits) ->
      let align = 1 lsl bits in
      let once = Bitops.align_up n ~align in
      Bitops.align_up once ~align = once && once >= n)

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:300 QCheck.(string_of_size Gen.small_nat)
    (fun s ->
      let b = Bytes.of_string s in
      Bytes.equal (Hex.to_bytes (Hex.of_bytes b)) b)

let prop_percentile_bounded =
  QCheck.Test.make ~name:"percentiles lie within min/max" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let arr = Array.of_list xs in
      let p = Stats.percentile arr 90.0 in
      let lo = Array.fold_left min arr.(0) arr and hi = Array.fold_left max arr.(0) arr in
      p >= lo -. 1e-9 && p <= hi +. 1e-9)

let suite =
  [
    Alcotest.test_case "rng: determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng: split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "rng: int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng: rejects bad bound" `Quick test_rng_int_rejects_nonpositive;
    Alcotest.test_case "rng: range inclusive" `Quick test_rng_range;
    Alcotest.test_case "rng: float in unit interval" `Quick test_rng_float_unit_interval;
    Alcotest.test_case "rng: bytes length" `Quick test_rng_bytes_length;
    Alcotest.test_case "rng: shuffle is a permutation" `Quick test_rng_shuffle_permutation;
    Alcotest.test_case "bitops: power-of-two predicate" `Quick test_bitops_power_of_two;
    Alcotest.test_case "bitops: next power of two" `Quick test_bitops_next_power_of_two;
    Alcotest.test_case "bitops: masks" `Quick test_bitops_mask;
    Alcotest.test_case "bitops: alignment" `Quick test_bitops_align;
    Alcotest.test_case "bitops: log2" `Quick test_bitops_log2;
    Alcotest.test_case "bitops: popcount" `Quick test_bitops_popcount;
    Alcotest.test_case "stats: percentiles" `Quick test_stats_percentile;
    Alcotest.test_case "stats: summary" `Quick test_stats_summary;
    Alcotest.test_case "stats: online matches batch" `Quick test_stats_online_matches_batch;
    Alcotest.test_case "crc32: vectors" `Quick test_crc32_vectors;
    Alcotest.test_case "crc32: incremental" `Quick test_crc32_incremental;
    Alcotest.test_case "hex: roundtrip" `Quick test_hex_roundtrip;
    Alcotest.test_case "hex: invalid input" `Quick test_hex_invalid;
    Alcotest.test_case "cost: meter accumulates" `Quick test_cost_meter_accumulates;
    Alcotest.test_case "cost: snapshot diff" `Quick test_cost_snapshot_diff;
    Alcotest.test_case "cost: reset" `Quick test_cost_reset;
    Alcotest.test_case "cost: copy formula" `Quick test_cost_copy_formula;
    Helpers.qtest prop_mask_confines;
    Helpers.qtest prop_align_up_idempotent;
    Helpers.qtest prop_hex_roundtrip;
    Helpers.qtest prop_percentile_bounded;
  ]
