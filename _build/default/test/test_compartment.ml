(* Compartment tests: grants, denials, crossing costs (gate vs TEE
   switch), and the trusted-component-allocates pattern. *)

open Cio_util
open Cio_compartment

let world ?(crossing = Compartment.Gate) () =
  let w = Compartment.create ~crossing () in
  let app = Compartment.add_domain w ~name:"app" in
  let io = Compartment.add_domain w ~name:"io" in
  (w, app, io)

let test_owner_access () =
  let w, app, _ = world () in
  let b = Compartment.alloc w ~owner:app 64 in
  Compartment.write w ~as_:app b ~pos:0 (Bytes.of_string "mine");
  Helpers.check_bytes "owner reads own buffer" (Bytes.of_string "mine")
    (Compartment.read w ~as_:app b ~pos:0 ~len:4)

let test_foreign_access_denied () =
  let w, app, io = world () in
  let b = Compartment.alloc w ~owner:app 64 in
  (match Compartment.read w ~as_:io b ~pos:0 ~len:4 with
  | _ -> Alcotest.fail "read must be denied"
  | exception Compartment.Access_violation _ -> ());
  (match Compartment.write w ~as_:io b ~pos:0 (Bytes.of_string "x") with
  | _ -> Alcotest.fail "write must be denied"
  | exception Compartment.Access_violation _ -> ());
  Alcotest.(check int) "denials counted" 2 (Compartment.counters w).Compartment.denied

let test_read_grant () =
  let w, app, io = world () in
  let b = Compartment.alloc_granted w ~owner:app ~reader:io 64 in
  Compartment.write w ~as_:app b ~pos:0 (Bytes.of_string "shared");
  Helpers.check_bytes "grantee reads" (Bytes.of_string "shared")
    (Compartment.read w ~as_:io b ~pos:0 ~len:6);
  (* Read grant does not imply write. *)
  match Compartment.write w ~as_:io b ~pos:0 (Bytes.of_string "x") with
  | _ -> Alcotest.fail "write must still be denied"
  | exception Compartment.Access_violation _ -> ()

let test_write_grant () =
  let w, app, io = world () in
  let b = Compartment.alloc_granted w ~owner:app ~reader:io ~write:true 64 in
  Compartment.write w ~as_:io b ~pos:0 (Bytes.of_string "io-wrote");
  Helpers.check_bytes "owner sees it" (Bytes.of_string "io-wrote")
    (Compartment.read w ~as_:app b ~pos:0 ~len:8)

let test_revoke_grant () =
  let w, app, io = world () in
  let b = Compartment.alloc_granted w ~owner:app ~reader:io 64 in
  ignore (Compartment.read w ~as_:io b ~pos:0 ~len:1);
  Compartment.revoke w b ~from:io;
  match Compartment.read w ~as_:io b ~pos:0 ~len:1 with
  | _ -> Alcotest.fail "revoked grant must deny"
  | exception Compartment.Access_violation _ -> ()

let test_use_after_free_denied () =
  let w, app, _ = world () in
  let b = Compartment.alloc w ~owner:app 16 in
  Compartment.free w b;
  match Compartment.read w ~as_:app b ~pos:0 ~len:1 with
  | _ -> Alcotest.fail "use after free must be denied"
  | exception Compartment.Access_violation _ -> ()

let test_out_of_bounds_denied () =
  let w, app, _ = world () in
  let b = Compartment.alloc w ~owner:app 16 in
  match Compartment.read w ~as_:app b ~pos:10 ~len:10 with
  | _ -> Alcotest.fail "oob must be denied"
  | exception Compartment.Access_violation _ -> ()

let test_gate_crossing_cost () =
  let w, app, io = world () in
  let m = Compartment.meter w in
  let result = Compartment.call w ~caller:app ~callee:io (fun () -> 40 + 2) in
  Alcotest.(check int) "call result" 42 result;
  Alcotest.(check int) "in + out" (2 * Cost.default.Cost.gate_crossing)
    (Cost.cycles_of m Cost.Gate);
  Alcotest.(check int) "counted" 1 (Compartment.counters w).Compartment.crossings

let test_same_domain_call_free () =
  let w, app, _ = world () in
  ignore (Compartment.call w ~caller:app ~callee:app (fun () -> ()));
  Alcotest.(check int) "no charge" 0 (Cost.cycles_of (Compartment.meter w) Cost.Gate)

let test_tee_switch_much_more_expensive () =
  (* E8's core comparison at unit level. *)
  let wg, a1, i1 = world ~crossing:Compartment.Gate () in
  let wt, a2, i2 = world ~crossing:Compartment.Tee_switch () in
  Compartment.call wg ~caller:a1 ~callee:i1 ignore;
  Compartment.call wt ~caller:a2 ~callee:i2 ignore;
  let gate = Cost.cycles_of (Compartment.meter wg) Cost.Gate in
  let tee = Cost.cycles_of (Compartment.meter wt) Cost.Gate in
  Alcotest.(check bool) "tee >> gate (at least 10x)" true (tee >= 10 * gate)

let test_crossing_charged_on_exception () =
  let w, app, io = world () in
  (try Compartment.call w ~caller:app ~callee:io (fun () -> failwith "inner") with Failure _ -> ());
  Alcotest.(check int) "exit leg still charged" (2 * Cost.default.Cost.gate_crossing)
    (Cost.cycles_of (Compartment.meter w) Cost.Gate)

let test_charge_crossing_mailbox () =
  let w, _, _ = world () in
  Compartment.charge_crossing w;
  Compartment.charge_crossing w;
  Alcotest.(check int) "two handoffs" 2 (Compartment.counters w).Compartment.crossings;
  Alcotest.(check int) "cycles" (4 * Cost.default.Cost.gate_crossing)
    (Cost.cycles_of (Compartment.meter w) Cost.Gate)

let test_copy_between_buffers () =
  let w, app, _ = world () in
  let src = Compartment.alloc w ~owner:app 32 in
  let dst = Compartment.alloc w ~owner:app 32 in
  Compartment.write w ~as_:app src ~pos:0 (Bytes.of_string "payload!");
  Compartment.copy_between w ~as_:app ~src ~dst ~src_pos:0 ~dst_pos:8 ~len:8;
  Helpers.check_bytes "copied" (Bytes.of_string "payload!")
    (Compartment.read w ~as_:app dst ~pos:8 ~len:8);
  Alcotest.(check bool) "copy metered" (Cost.cycles_of (Compartment.meter w) Cost.Copy > 0) true

let prop_no_grant_no_access =
  QCheck.Test.make ~name:"no grant => no access, ever" ~count:100
    QCheck.(pair (int_bound 63) bool)
    (fun (pos, write) ->
      let w, app, io = world () in
      let b = Compartment.alloc w ~owner:app 64 in
      match
        if write then Compartment.write w ~as_:io b ~pos (Bytes.of_string "x")
        else ignore (Compartment.read w ~as_:io b ~pos ~len:1)
      with
      | _ -> false
      | exception Compartment.Access_violation _ -> true)

let suite =
  [
    Alcotest.test_case "owner access" `Quick test_owner_access;
    Alcotest.test_case "foreign access denied" `Quick test_foreign_access_denied;
    Alcotest.test_case "read grant" `Quick test_read_grant;
    Alcotest.test_case "write grant" `Quick test_write_grant;
    Alcotest.test_case "grant revocation" `Quick test_revoke_grant;
    Alcotest.test_case "use after free" `Quick test_use_after_free_denied;
    Alcotest.test_case "out of bounds" `Quick test_out_of_bounds_denied;
    Alcotest.test_case "gate crossing cost" `Quick test_gate_crossing_cost;
    Alcotest.test_case "same-domain call free" `Quick test_same_domain_call_free;
    Alcotest.test_case "tee switch >> gate (E8)" `Quick test_tee_switch_much_more_expensive;
    Alcotest.test_case "crossing charged on exception" `Quick test_crossing_charged_on_exception;
    Alcotest.test_case "mailbox handoff charging" `Quick test_charge_crossing_mailbox;
    Alcotest.test_case "copy between buffers" `Quick test_copy_between_buffers;
    Helpers.qtest prop_no_grant_no_access;
  ]
