(* Benchmark harness.

   Two parts:

   1. The experiment tables — one section per paper figure (F2-F5) and
      per §3 exploration (E1-E11), printing the rows/series the figure
      reports (simulated-metric results; see EXPERIMENTS.md for the
      paper-vs-measured comparison). This is what `bench/main.exe` is for.

   2. Bechamel micro-benchmarks — one Test.make per experiment datapath,
      measuring this implementation's real wall-clock time for the same
      operations (ring ops, driver pairs, record protection, crypto,
      compartment calls, end-to-end echoes). These validate that the
      simulator itself is fast enough to be used as a substrate.

   Usage:
     bench/main.exe                 # tables + micro-benchmarks
     bench/main.exe tables          # tables only
     bench/main.exe micro           # micro-benchmarks only
     bench/main.exe fig5 e2 ...     # selected tables only
*)

open Bechamel
open Toolkit

(* --- part 2: Bechamel micro-benchmarks ------------------------------- *)

let test_ring_roundtrip positioning name =
  let cfg = { Cio_cionet.Config.default with Cio_cionet.Config.positioning } in
  let drv = Cio_cionet.Driver.create ~name:("bench-" ^ name) cfg in
  let host = Cio_cionet.Host_model.create ~driver:drv ~transmit:(fun _ -> ()) in
  let payload = Bytes.make 1024 'b' in
  Test.make ~name:("cionet-" ^ name)
    (Staged.stage (fun () ->
         ignore (Cio_cionet.Driver.transmit drv payload);
         Cio_cionet.Host_model.poll host;
         Cio_cionet.Host_model.deliver_rx host payload;
         Cio_cionet.Host_model.poll host;
         ignore (Cio_cionet.Driver.poll drv)))

let test_cionet_revoke () =
  let cfg = { Cio_cionet.Config.default with Cio_cionet.Config.rx_strategy = Cio_cionet.Config.Revoke } in
  let drv = Cio_cionet.Driver.create ~name:"bench-revoke" cfg in
  let host = Cio_cionet.Host_model.create ~driver:drv ~transmit:(fun _ -> ()) in
  let payload = Bytes.make 4096 'r' in
  Test.make ~name:"cionet-rx-revoke"
    (Staged.stage (fun () ->
         Cio_cionet.Host_model.deliver_rx host payload;
         Cio_cionet.Host_model.poll host;
         ignore (Cio_cionet.Driver.poll drv)))

let test_virtio ~hardened name =
  let transport = Cio_virtio.Transport.create ~name:("bench-" ^ name) () in
  let dev =
    Cio_virtio.Device.create ~rx:(Cio_virtio.Transport.rx transport)
      ~tx:(Cio_virtio.Transport.tx transport) ~transmit:(fun _ -> ())
  in
  let payload = Bytes.make 1024 'v' in
  if hardened then begin
    let drv = Cio_virtio.Driver_hardened.create transport in
    Test.make ~name
      (Staged.stage (fun () ->
           ignore (Cio_virtio.Driver_hardened.transmit drv payload);
           Cio_virtio.Device.deliver_rx dev payload;
           Cio_virtio.Device.poll dev;
           ignore (Cio_virtio.Driver_hardened.poll drv)))
  end
  else begin
    let drv = Cio_virtio.Driver_unhardened.create transport in
    Test.make ~name
      (Staged.stage (fun () ->
           ignore (Cio_virtio.Driver_unhardened.transmit drv payload);
           Cio_virtio.Device.deliver_rx dev payload;
           Cio_virtio.Device.poll dev;
           ignore (Cio_virtio.Driver_unhardened.poll drv)))
  end

let test_tls_record () =
  let rng = Cio_util.Rng.create 1L in
  let psk = Bytes.make 32 'p' in
  let c = Cio_tls.Session.create ~role:Cio_tls.Session.Client ~psk ~psk_id:"b" ~rng () in
  let s = Cio_tls.Session.create ~role:Cio_tls.Session.Server ~psk ~psk_id:"b" ~rng () in
  let cat l = List.fold_left Bytes.cat Bytes.empty l in
  let f1 = match Cio_tls.Session.initiate c with Ok o -> cat o | Error _ -> assert false in
  let r1 = Cio_tls.Session.feed s f1 in
  let r2 = Cio_tls.Session.feed c (cat r1.Cio_tls.Session.outputs) in
  ignore (Cio_tls.Session.feed s (cat r2.Cio_tls.Session.outputs));
  let payload = Bytes.make 1024 't' in
  Test.make ~name:"tls-seal-open-1KiB"
    (Staged.stage (fun () ->
         match Cio_tls.Session.send_data c payload with
         | Ok wire -> ignore (Cio_tls.Session.feed s wire)
         | Error _ -> assert false))

let test_crypto_primitives () =
  let data = Bytes.make 4096 'c' in
  let key = Bytes.make 32 'k' and nonce = Bytes.make 12 'n' in
  [
    Test.make ~name:"sha256-4KiB" (Staged.stage (fun () -> ignore (Cio_crypto.Sha256.digest_bytes data)));
    Test.make ~name:"aead-seal-4KiB"
      (Staged.stage (fun () -> ignore (Cio_crypto.Aead.seal ~key ~nonce ~aad:Bytes.empty data)));
  ]

let test_packed ~hardened name =
  let tr = Cio_virtio.Packed.create_transport ~name:("bench-" ^ name) () in
  let dev = Cio_virtio.Packed.create_device ~transport:tr ~transmit:(fun _ -> ()) in
  let drv = Cio_virtio.Packed.create_driver ~hardened tr in
  let payload = Bytes.make 1024 'p' in
  Test.make ~name
    (Staged.stage (fun () ->
         ignore (Cio_virtio.Packed.driver_transmit drv payload);
         Cio_virtio.Packed.device_deliver_rx dev payload;
         Cio_virtio.Packed.device_poll dev;
         ignore (Cio_virtio.Packed.driver_poll drv)))

let test_compartment_call () =
  let open Cio_compartment in
  let w = Compartment.create ~crossing:Compartment.Gate () in
  let a = Compartment.add_domain w ~name:"a" and b = Compartment.add_domain w ~name:"b" in
  Test.make ~name:"compartment-gate-call"
    (Staged.stage (fun () -> Compartment.call w ~caller:a ~callee:b ignore))

let test_echo_configuration kind =
  Test.make
    ~name:("echo-" ^ Cio_core.Configurations.kind_name kind)
    (Staged.stage (fun () ->
         ignore (Cio_core.Configurations.run_echo ~messages:5 ~msg_size:512 kind)))

let test_storage () =
  let dev, _ = Cio_storage.Blockdev.create ~name:"bench-store" ~blocks:256 () in
  let store = Cio_storage.Dual_store.create ~dev ~key:(Bytes.make 32 'K') () in
  let content = Bytes.make 8192 's' in
  let counter = ref 0 in
  Test.make ~name:"dual-store-write-read-8KiB"
    (Staged.stage (fun () ->
         incr counter;
         let name = Printf.sprintf "f%d" (!counter mod 8) in
         ignore (Cio_storage.Dual_store.write_file store ~name content);
         ignore (Cio_storage.Dual_store.read_file store ~name)))

let test_dda () =
  let rng = Cio_util.Rng.create 3L in
  match Cio_dda.Dda.establish ~rng () with
  | Error _ -> Test.make ~name:"dda-transfer-4KiB" (Staged.stage (fun () -> ()))
  | Ok t ->
      let payload = Bytes.make 4096 'd' in
      Test.make ~name:"dda-transfer-4KiB"
        (Staged.stage (fun () -> ignore (Cio_dda.Dda.transfer t payload)))

let micro_tests () =
  Test.make_grouped ~name:"cio"
    ([
       test_ring_roundtrip (Cio_cionet.Config.Inline { data_capacity = 4096 }) "inline";
       test_ring_roundtrip (Cio_cionet.Config.Pool { pool_slots = 128; pool_slot_size = 2048 }) "pool";
       test_ring_roundtrip
         (Cio_cionet.Config.Indirect { desc_count = 128; pool_slots = 128; pool_slot_size = 2048 })
         "indirect";
       test_cionet_revoke ();
       test_virtio ~hardened:false "virtio-unhardened";
       test_virtio ~hardened:true "virtio-hardened";
       test_packed ~hardened:false "packed-unhardened";
       test_packed ~hardened:true "packed-hardened";
       test_tls_record ();
       test_compartment_call ();
       test_storage ();
       test_dda ();
     ]
    @ test_crypto_primitives ()
    @ List.map test_echo_configuration Cio_core.Configurations.all_kinds)

let () = Bechamel_notty.Unit.add Instance.monotonic_clock "ns"

let run_micro () =
  Fmt.pr "@.=== Bechamel micro-benchmarks (wall time of this implementation) ===@.";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let results = Analyze.merge ols instances results in
  let window =
    match Notty_unix.winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 100; h = 1 }
  in
  let img =
    Bechamel_notty.Multiple.image_of_ols_results ~rect:window ~predictor:Measure.run results
  in
  Notty_unix.eol img |> Notty_unix.output_image

let () =
  Cio_tcb.Tcb.set_repo_root ".";
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] ->
      Cio_experiments.Experiments.run_all Fmt.stdout ();
      run_micro ()
  | [ "tables" ] -> Cio_experiments.Experiments.run_all Fmt.stdout ()
  | [ "micro" ] -> run_micro ()
  | ids ->
      List.iter
        (fun id ->
          if not (Cio_experiments.Experiments.run_one Fmt.stdout id) then
            Fmt.epr "unknown experiment: %s@." id)
        ids
