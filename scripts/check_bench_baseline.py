#!/usr/bin/env python3
"""Compare a fresh bench run against the committed baseline.

Usage: check_bench_baseline.py CURRENT.json BASELINE.json [--strict]

Both files are cio-bench-v1 JSON as written by `bench/main.exe --json`.
Compares the `micro_ns_per_run` entries whose names start with
"cio/cionet": warns when a micro got more than 10% slower than the
baseline (exit 1 with --strict), and checks the batching win — a burst
micro of depth d must cost less per frame than d times its single-slot
counterpart wherever both are present.

CI timing noise makes a hard gate on absolute numbers fragile; the
default mode therefore only warns on regressions but always fails on a
malformed file or an inverted batching result.
"""

import json
import os
import re
import sys

SLOWDOWN_TOLERANCE = 1.10
PREFIX = "cio/cionet"


def load(path, optional=False):
    """Parse a cio-bench-v1 file into {micro_name: ns_per_run}.

    A missing *optional* file (the committed baseline on a branch that
    has not generated one yet) returns None so the caller can skip the
    comparison with a warning instead of a traceback. Anything else that
    is wrong — unreadable file, malformed JSON, wrong schema — is still
    a hard error: a corrupt baseline should fail loudly, not silently
    pass the gate.
    """
    if optional and not os.path.exists(path):
        print(f"warning: {path}: baseline file not found; skipping comparison")
        return None
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    if doc.get("schema") != "cio-bench-v1":
        sys.exit(f"error: {path}: not a cio-bench-v1 file")
    micro = doc.get("micro_ns_per_run", {})
    if not isinstance(micro, dict):
        sys.exit(f"error: {path}: micro_ns_per_run is not an object")
    out = {}
    for k, v in micro.items():
        if not k.startswith(PREFIX):
            continue
        try:
            out[k] = float(v)
        except (TypeError, ValueError):
            print(f"warning: {path}: {k}: non-numeric value {v!r}; skipping")
    return out


def check_regressions(current, baseline):
    warnings = 0
    for name in sorted(baseline):
        if name not in current:
            print(f"warning: {name}: in baseline but missing from this run"
                  " (renamed or deleted micro?)")
            warnings += 1
            continue
        base, cur = baseline[name], current[name]
        if base <= 0:
            continue
        ratio = cur / base
        if ratio > SLOWDOWN_TOLERANCE:
            print(
                f"warning: {name}: {cur:.0f} ns/run vs baseline {base:.0f}"
                f" ({(ratio - 1) * 100:.1f}% slower)"
            )
            warnings += 1
        else:
            print(f"ok: {name}: {cur:.0f} ns/run (baseline {base:.0f})")
    for name in sorted(set(current) - set(baseline)):
        # A new micro is not a regression: it gets a baseline entry the
        # next time BENCH_baseline.json is regenerated.
        print(f"note: {name}: {current[name]:.0f} ns/run, new micro"
              " (not in baseline; comparison skipped)")
    return warnings


GATED_DEPTH = 16


def check_batching_wins(current):
    """Burst micros must beat single-slot per frame: the whole point of
    the batched datapath. cio/cionet-burst-d16-inline amortizes over 16
    frames of the same roundtrip that cio/cionet-inline does once. Only
    depth 16 — the sweet spot where the amortization curve has flattened
    (E21) — is a hard gate; deeper batches trade cache locality for
    little extra amortization and only warn."""
    errors = 0
    burst_re = re.compile(rf"^{re.escape(PREFIX)}-burst-d(\d+)-(\w+)$")
    for name, ns in sorted(current.items()):
        m = burst_re.match(name)
        if not m:
            continue
        depth, variant = int(m.group(1)), m.group(2)
        single = current.get(f"{PREFIX}-{variant}")
        if single is None or single <= 0:
            continue
        per_frame = ns / depth
        if per_frame >= single:
            gated = depth == GATED_DEPTH
            print(
                f"{'error' if gated else 'warning'}: {name}:"
                f" {per_frame:.0f} ns/frame at depth {depth}"
                f" is not below single-slot {single:.0f}"
            )
            errors += 1 if gated else 0
        else:
            print(
                f"ok: {name}: {per_frame:.0f} ns/frame < single-slot {single:.0f}"
            )
    return errors


def main(argv):
    strict = "--strict" in argv
    args = [a for a in argv if a != "--strict"]
    if len(args) != 2:
        sys.exit(__doc__.strip())
    current = load(args[0])
    baseline = load(args[1], optional=True)
    if not current:
        sys.exit(f"error: {args[0]}: no {PREFIX} micros (run bench with micros enabled)")
    if baseline is None:
        # No baseline to compare against: still run the self-contained
        # batching check, which needs only the current run.
        errors = check_batching_wins(current)
        if errors:
            sys.exit(1)
        print("bench baseline check passed (no baseline file; comparison skipped)")
        return
    warnings = check_regressions(current, baseline)
    errors = check_batching_wins(current)
    if errors:
        sys.exit(1)
    if warnings:
        print(f"{warnings} regression warning(s) vs baseline")
        if strict:
            sys.exit(1)
    print("bench baseline check passed")


if __name__ == "__main__":
    main(sys.argv[1:])
