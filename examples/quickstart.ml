(* Quickstart: one confidential echo round trip through the full dual
   boundary — safe L2 ring, quarantined TCP/IP compartment, mandatory TLS
   at L5 — against a plain remote peer on the simulated network.

     dune exec examples/quickstart.exe
*)

open Cio_core
open Cio_frame
open Cio_netsim
open Cio_util

let () =
  (* 1. A simulated network: one link between the confidential host (A)
     and the remote peer (B). *)
  let engine = Engine.create () in
  let link = Link.create ~latency_ns:10_000L ~gbps:10.0 engine in
  let rng = Rng.create 2026L in
  let now () = Engine.now engine in

  let ip_tee = Option.get (Addr.ipv4_of_string "10.0.0.1") in
  let ip_peer = Option.get (Addr.ipv4_of_string "10.0.0.2") in
  let mac_tee = Addr.mac_of_octets 0x02 0 0 0 0 1 in
  let mac_peer = Addr.mac_of_octets 0x02 0 0 0 0 2 in

  (* The PSK stands in for an attestation-provisioned secret. *)
  let psk = Bytes.of_string "attestation-provisioned-psk-32b!" in

  (* 2. The remote peer: an ordinary TLS echo service. *)
  let peer =
    Peer.create ~link ~endpoint:Link.B ~ip:ip_peer ~mac:mac_peer
      ~neighbors:[ (ip_tee, mac_tee) ] ~psk ~psk_id:"quickstart" ~rng:(Rng.split rng) ~now ()
  in
  Peer.serve_echo peer ~port:443;

  (* 3. The confidential unit: cionet + compartmentalised stack + TLS. *)
  let unit_ =
    Dual.create ~mac:mac_tee ~name:"quickstart-tee" ~ip:ip_tee
      ~neighbors:[ (ip_peer, mac_peer) ] ~psk ~psk_id:"quickstart" ~rng:(Rng.split rng) ~now ()
  in

  (* 4. The untrusted host device model bridging the ring to the wire. *)
  let host =
    Cio_cionet.Host_model.create ~driver:(Dual.driver unit_)
      ~transmit:(fun frame -> Link.send link ~src:Link.A frame)
  in
  Link.attach link Link.A (fun frame -> Cio_cionet.Host_model.deliver_rx host frame);

  (* 5. Connect and echo. *)
  let channel = Dual.connect unit_ ~dst:ip_peer ~dst_port:443 in
  let pump () =
    Dual.poll unit_;
    Cio_cionet.Host_model.poll host;
    Peer.poll peer;
    Engine.advance engine ~by:2_000L
  in
  let rec wait_for pred n =
    if pred () then true
    else if n = 0 then false
    else begin
      pump ();
      wait_for pred (n - 1)
    end
  in
  if not (wait_for (fun () -> Channel.is_established channel) 5_000) then begin
    prerr_endline "handshake did not complete";
    exit 1
  end;
  Fmt.pr "TLS channel established through the dual boundary.@.";

  let message = Bytes.of_string "hello, confidential world" in
  (match Channel.send channel message with
  | Ok () -> ()
  | Error e -> failwith (Cio_tls.Session.error_to_string e));
  let echo = ref None in
  ignore
    (wait_for
       (fun () ->
         (match Channel.recv channel with Some m -> echo := Some m | None -> ());
         !echo <> None)
       5_000);
  (match !echo with
  | Some m when Bytes.equal m message -> Fmt.pr "echo received intact: %S@." (Bytes.to_string m)
  | Some m -> Fmt.pr "echo CORRUPTED: %S@." (Bytes.to_string m)
  | None -> Fmt.pr "no echo received@.");

  (* 6. Self-healing: stall the host device mid-session. The driver
     watchdog notices the missed deadline, throws the rings away
     (generation bump — the interface is stateless, so nothing needs to
     be renegotiated with anyone), and traffic resumes. *)
  let watchdog =
    Cio_cionet.Watchdog.create ~poll_budget:200
      ~recovery:(Dual.recovery unit_)
      ~on_reset:(fun () ->
        Cio_cionet.Host_model.reattach host ~driver:(Dual.driver unit_))
      (Dual.driver unit_)
  in
  Cio_cionet.Host_model.inject host (Cio_cionet.Host_model.Stall 600);
  let message2 = Bytes.of_string "hello again, after the host stalled" in
  (match Channel.send channel message2 with
  | Ok () -> ()
  | Error e -> failwith (Cio_tls.Session.error_to_string e));
  let echo2 = ref None in
  ignore
    (wait_for
       (fun () ->
         Cio_cionet.Watchdog.tick watchdog ~expecting_rx:true;
         (match Channel.recv channel with Some m -> echo2 := Some m | None -> ());
         !echo2 <> None)
       (* The reset discards the in-flight segment with the rest of the ring;
          TCP's retransmission timer (200 ms simulated) replays it. *)
       200_000);
  (match !echo2 with
  | Some m when Bytes.equal m message2 ->
      Fmt.pr "host stalled; watchdog reset the rings; echo received intact: %S@."
        (Bytes.to_string m)
  | Some m -> Fmt.pr "echo CORRUPTED: %S@." (Bytes.to_string m)
  | None -> Fmt.pr "no echo after stall@.");

  (* 7. What it cost, and what the host saw. *)
  let meter = Dual.meter unit_ in
  Fmt.pr "TEE work: %d cycles (%a)@." (Cost.total meter) Cost.pp_meter meter;
  Fmt.pr "L5 compartment handoffs: %d@." (Dual.crossings unit_);
  Fmt.pr "recovery: %a@." Cio_observe.Recovery.pp
    (Cio_observe.Recovery.snapshot (Dual.recovery unit_));
  Fmt.pr "frames on the wire: %d out, %d in — all the host ever observed.@."
    (Link.frames_sent link ~src:Link.A)
    (Link.frames_sent link ~src:Link.B)
